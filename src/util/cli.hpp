// Tiny argv parser shared by the examples and bench harnesses.
//
// Accepts "--key=value", "--key value" and bare "--flag" forms. Unknown
// keys are collected so harnesses can reject typos.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wormsim::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(std::string_view key) const;
  std::optional<std::string> get(std::string_view key) const;

  std::string get_string(std::string_view key, std::string_view def) const;
  long long get_int(std::string_view key, long long def) const;
  unsigned long long get_uint(std::string_view key,
                              unsigned long long def) const;
  double get_double(std::string_view key, double def) const;
  bool get_bool(std::string_view key, bool def) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Keys that were consumed by none of the get_* calls; call at the end
  /// of argument handling to diagnose typos.
  std::vector<std::string> unused() const;

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> kv_;
  mutable std::map<std::string, bool, std::less<>> used_;
  std::vector<std::string> positional_;
};

}  // namespace wormsim::util
