#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace wormsim::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double bin_width, std::size_t max_bins)
    : bin_width_(bin_width > 0 ? bin_width : 1.0), max_bins_(max_bins) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < 0) x = 0;
  const auto idx = static_cast<std::size_t>(x / bin_width_);
  if (idx >= max_bins_) {
    ++overflow_;
    return;
  }
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  ++bins_[idx];
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (seen + bins_[i] > target) {
      const double within =
          bins_[i] ? static_cast<double>(target - seen) /
                         static_cast<double>(bins_[i])
                   : 0.0;
      return (static_cast<double>(i) + within) * bin_width_;
    }
    seen += bins_[i];
  }
  return static_cast<double>(bins_.size()) * bin_width_;
}

void Histogram::reset() noexcept {
  bins_.clear();
  total_ = 0;
  overflow_ = 0;
}

double FairnessCounters::mean() const noexcept {
  if (counts_.empty()) return 0.0;
  double sum = 0;
  for (auto c : counts_) sum += static_cast<double>(c);
  return sum / static_cast<double>(counts_.size());
}

double FairnessCounters::deviation_pct(std::size_t node) const noexcept {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return (static_cast<double>(counts_[node]) - m) / m * 100.0;
}

double FairnessCounters::max_abs_deviation_pct() const noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    worst = std::max(worst, std::abs(deviation_pct(i)));
  }
  return worst;
}

double FairnessCounters::jain_index() const noexcept {
  if (counts_.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (auto c : counts_) {
    const double x = static_cast<double>(c);
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(counts_.size()) * sumsq);
}

}  // namespace wormsim::util
