// Dense-bitmap index set for the simulator's active-set core.
//
// Tracks which members of a fixed index range [0, capacity) are
// "active" so per-cycle loops can visit only those, in ascending index
// order — the same order a dense scan would visit them, which is what
// keeps the active-set core bit-identical to the dense reference core.
//
// Costs: insert / erase / contains are O(1) bit operations; iteration
// is O(capacity / 64 + members). In the spirit of util::SmallVector this
// is deliberately minimal, allocation-free after construction/resize,
// and assert-checked rather than exception-throwing on misuse.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wormsim::util {

class ActiveSet {
 public:
  ActiveSet() = default;
  explicit ActiveSet(std::size_t capacity) { reset(capacity); }

  /// Resize to [0, capacity) and clear all membership.
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    words_.assign((capacity + 63) / 64, 0);
    count_ = 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  bool contains(std::size_t i) const noexcept {
    assert(i < capacity_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Idempotent: inserting a member again is a no-op.
  void insert(std::size_t i) noexcept {
    assert(i < capacity_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ += !(w & bit);
    w |= bit;
  }

  /// Idempotent: erasing a non-member is a no-op.
  void erase(std::size_t i) noexcept {
    assert(i < capacity_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ -= !!(w & bit);
    w &= ~bit;
  }

  // --- sharded access -----------------------------------------------
  //
  // The sharded simulator core partitions the bitmap into contiguous
  // word ranges, one per shard, so each word is mutated by exactly one
  // thread. The shared `count_` would still be a data race, so shards
  // use the *_unsized mutators (which report whether membership
  // changed) and the owner folds the per-shard deltas back in with
  // `adjust_size` at the barrier. The sequential mutators above are
  // untouched — the single-shard path pays nothing for this.

  /// Set bit `i` without updating size(); true if `i` was absent.
  bool insert_unsized(std::size_t i) noexcept {
    assert(i < capacity_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    const bool changed = !(w & bit);
    w |= bit;
    return changed;
  }

  /// Clear bit `i` without updating size(); true if `i` was present.
  bool erase_unsized(std::size_t i) noexcept {
    assert(i < capacity_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    const bool changed = !!(w & bit);
    w &= ~bit;
    return changed;
  }

  /// Fold a batch of *_unsized membership changes back into size().
  void adjust_size(std::ptrdiff_t delta) noexcept {
    assert(delta >= 0 ||
           count_ >= static_cast<std::size_t>(-delta));
    count_ = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(count_) + delta);
  }

  /// Number of 64-bit words backing the bitmap (shard partitioning).
  std::size_t word_count() const noexcept { return words_.size(); }

  void clear() noexcept {
    words_.assign(words_.size(), 0);
    count_ = 0;
  }

  /// Visit every member in ascending order. The callback may erase the
  /// member being visited and may insert/erase indices in either
  /// direction; the iteration works on a snapshot of each word taken
  /// when that word is reached, so members inserted into an
  /// already-passed word (or the snapshot word itself) are simply not
  /// visited until the next call — exactly the semantics the simulator's
  /// phase loops need (activations always target a *later* phase).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_in_words(0, words_.size(), fn);
  }

  /// for_each restricted to words [w_lo, w_hi) — i.e. members in
  /// [w_lo*64, w_hi*64). Same snapshot semantics as for_each. Shards
  /// iterate disjoint word ranges concurrently; that is race-free as
  /// long as every concurrent mutation stays within the mutating
  /// shard's own range.
  template <typename Fn>
  void for_each_in_words(std::size_t w_lo, std::size_t w_hi,
                         Fn&& fn) const {
    assert(w_lo <= w_hi && w_hi <= words_.size());
    for (std::size_t w = w_lo; w < w_hi; ++w) {
      std::uint64_t bits = words_[w];  // snapshot
      while (bits) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        fn(w * 64 + b);
      }
    }
  }

  /// Membership count recomputed from the bitmap (coherence checks).
  std::size_t recount() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

}  // namespace wormsim::util
