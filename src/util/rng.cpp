#include "util/rng.hpp"

#include <cmath>

namespace wormsim::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // consecutive zeros from any seed, so no further check is needed.
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's method with rejection for exact uniformity.
  while (true) {
    const std::uint64_t x = gen_.next();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (0ULL - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::split() noexcept {
  // The child takes the current 2^128-draw block; the parent jumps past
  // it, so successive splits hand out disjoint, non-overlapping blocks.
  // (Jumping the child instead would NOT work: jump commutes with
  // stepping, so children separated by one parent step would produce
  // the same stream shifted by one draw.)
  Rng child(0);
  child.gen_ = gen_;
  gen_.jump();
  return child;
}

}  // namespace wormsim::util
