// Streaming statistics used by the metrics collector.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace wormsim::util {

/// Welford online mean/variance accumulator. Numerically stable, O(1)
/// per sample, mergeable (parallel-sweep friendly).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n); the simulator reports whole-run
  /// populations, not samples of a larger run.
  double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Unbiased sample variance (divides by n-1).
  double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin-width histogram with an overflow bucket; grows its bin count
/// lazily up to `max_bins`, after which samples land in the overflow.
/// Supports approximate quantiles by linear interpolation within a bin.
class Histogram {
 public:
  explicit Histogram(double bin_width = 1.0, std::size_t max_bins = 1 << 16);

  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_width() const noexcept { return bin_width_; }
  const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }

  /// q in [0,1]. Returns an interpolated value; if the quantile falls in
  /// the overflow bucket, returns the histogram's upper edge.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  double bin_width_;
  std::size_t max_bins_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Per-node counter vector with fairness summaries: used for the paper's
/// Figure 4 (per-node sent-message deviation from the mean).
class FairnessCounters {
 public:
  explicit FairnessCounters(std::size_t num_nodes) : counts_(num_nodes, 0) {}

  void increment(std::size_t node) noexcept { ++counts_[node]; }
  std::uint64_t at(std::size_t node) const noexcept { return counts_[node]; }
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

  double mean() const noexcept;
  /// Signed relative deviation of one node from the mean, in percent
  /// (the y-axis of the paper's Figure 4).
  double deviation_pct(std::size_t node) const noexcept;
  /// Largest |deviation_pct| over all nodes.
  double max_abs_deviation_pct() const noexcept;
  /// Jain's fairness index in (0, 1]; 1 means perfectly fair.
  double jain_index() const noexcept;

  void reset() noexcept { counts_.assign(counts_.size(), 0); }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace wormsim::util
