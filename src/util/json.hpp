// Minimal JSON emission and parsing for machine-readable telemetry.
//
// The writer streams structurally-checked JSON (object/array nesting is
// tracked, commas are inserted automatically) so exporters cannot emit
// malformed records. The parser is a strict recursive-descent reader
// used by tests to validate emitted telemetry/trace files against their
// schema and by benches to read committed baseline JSON. Neither side
// aims to be a general-purpose library: no comments, no NaN/Inf (the
// writer maps them to null), UTF-8 passed through untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wormsim::util {

/// Streaming JSON writer. Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.field("schema", "wormsim.telemetry/1");
///   w.key("result"); w.begin_object(); ... w.end_object();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit an object key; must be followed by exactly one value.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value_null();

  /// key + value in one call.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// JSON string escaping (quotes not included).
  static std::string escape(std::string_view s);
  /// Round-trippable number formatting (shortest form, no locale).
  static std::string format_double(double v);

 private:
  void separate();  // comma/newline management before a new element

  std::ostream* out_;
  // One entry per open container: true while it has no elements yet.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Parsed JSON value (object keys preserve insertion order).
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::Null; }
  bool is_bool() const noexcept { return kind == Kind::Bool; }
  bool is_number() const noexcept { return kind == Kind::Number; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_object() const noexcept { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Dotted-path lookup through nested objects, e.g. "perf.cycles_per_second".
  const JsonValue* at_path(std::string_view dotted) const noexcept;
};

/// Strict parse of a complete JSON document (trailing whitespace
/// allowed, trailing garbage is an error). On failure returns nullopt
/// and, if `error` is non-null, a message with the byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace wormsim::util
