#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace wormsim::util {

// --- Writer -----------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!first_.empty()) {
    if (!first_.back()) *out_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::begin_object() {
  separate();
  *out_ << '{';
  first_.push_back(true);
}

void JsonWriter::end_object() {
  assert(!first_.empty());
  first_.pop_back();
  *out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  *out_ << '[';
  first_.push_back(true);
}

void JsonWriter::end_array() {
  assert(!first_.empty());
  first_.pop_back();
  *out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  separate();
  *out_ << '"' << escape(k) << "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separate();
  *out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(bool v) {
  separate();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  separate();
  *out_ << format_double(v);
}

void JsonWriter::value(std::int64_t v) {
  separate();
  *out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  *out_ << v;
}

void JsonWriter::value_null() {
  separate();
  *out_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  // JSON has no NaN/Inf; map them to null so files always parse.
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
  // to_chars shortest form may be integral ("3"); that is still a valid
  // JSON number, so keep it as-is.
  return s;
}

// --- Value ------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [key, val] : object) {
    if (key == k) return &val;
  }
  return nullptr;
}

const JsonValue* JsonValue::at_path(std::string_view dotted) const noexcept {
  const JsonValue* cur = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    cur = cur->find(head);
    if (!cur) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

// --- Parser -----------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* msg) {
    if (error_ && error_->empty()) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      JsonValue val;
      if (!parse_value(val)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue val;
      if (!parse_value(val)) return false;
      out.array.push_back(std::move(val));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            pos_ += 4;
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported —
            // the emitters never produce them).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return fail("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    // JSON forbids leading zeros: "0" and "0.5" are fine, "01" is not.
    const std::size_t digits = start + (text_[start] == '-' ? 1 : 0);
    if (digits + 1 < pos_ && text_[digits] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[digits + 1]))) {
      return fail("leading zero in number");
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  if (error) error->clear();
  return Parser(text, error).parse();
}

}  // namespace wormsim::util
