// Deterministic, fast pseudo-random number generation for simulation.
//
// The simulator must be exactly reproducible given a seed, across
// platforms and standard-library implementations, so we avoid
// std::mt19937/std::*_distribution (whose algorithms are unspecified for
// the distributions) and implement xoshiro256** seeded via SplitMix64,
// plus the handful of distributions the workload generators need.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wormsim::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to
/// derive independent per-node substream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix-style stream split: the seed of independent substream
/// `stream` of `base` — exactly the (stream+1)-th output of
/// SplitMix64(base), but computed by random access so it does not
/// depend on the order streams are requested in. The parallel sweep
/// harness derives one stream per simulation point from this, which is
/// what makes results bit-identical regardless of thread count or
/// scheduling order.
constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                           std::uint64_t stream) noexcept {
  std::uint64_t z = base + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman/Vigna).
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead 2^128 steps; used to split one seed into many
  /// non-overlapping substreams (one per network node).
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Simulation-facing RNG with the distributions the workloads need.
/// All methods are branch-light and allocation-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept : gen_(seed) {}

  std::uint64_t bits() noexcept { return gen_.next(); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Geometric number of whole cycles until a Bernoulli(p) event fires
  /// (>= 0); used for discrete-time exponential inter-arrival.
  std::uint64_t geometric(double p) noexcept;

  /// Derive an independent substream (for per-node generators).
  Rng split() noexcept;

 private:
  Xoshiro256 gen_;
};

}  // namespace wormsim::util
