// Minimal CSV emission for bench/figure harnesses.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wormsim::util {

/// Writes RFC-4180-ish CSV rows to an ostream. Values containing commas,
/// quotes or newlines are quoted. Numeric overloads format with enough
/// precision to round-trip.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string_view> names) {
    row_strings(std::vector<std::string>(names.begin(), names.end()));
  }

  /// Variadic row: accepts any mix of arithmetic types and strings.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format(values)), ...);
    row_strings(cells);
  }

  std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(std::string_view value);
  static std::string format(double v);
  static std::string format(float v) { return format(static_cast<double>(v)); }
  static std::string format(std::string_view v) { return escape(v); }
  static std::string format(const std::string& v) { return escape(v); }
  static std::string format(const char* v) { return escape(v); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format(T v) {
    return std::to_string(v);
  }

 private:
  void row_strings(const std::vector<std::string>& cells);

  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace wormsim::util
