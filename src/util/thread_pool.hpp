// Work-stealing thread pool for embarrassingly parallel simulation work.
//
// The sweep harness runs one full simulation per task (milliseconds to
// seconds each), so the design optimises for correctness and clean
// semantics rather than nanosecond dispatch: per-worker deques guarded
// by one pool mutex, round-robin submission, and workers that steal
// from a sibling's queue when their own runs dry. Tasks this coarse
// never contend meaningfully on the lock.
//
// Semantics that callers rely on:
//  - `wait()` blocks until every submitted task has finished and
//    rethrows the first exception any task threw (later exceptions of
//    the same batch are dropped; the error slot is cleared so the pool
//    stays usable).
//  - The destructor drains queued tasks gracefully (runs them, then
//    joins); exceptions raised during destruction are swallowed — call
//    `wait()` if you care about them.
//  - Worker count: `default_jobs()` honours the WORMSIM_JOBS
//    environment variable (>= 1) and falls back to
//    std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wormsim::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `workers == 0` means `default_jobs()`.
  explicit ThreadPool(unsigned workers = 0);

  /// Drains queued tasks, joins all workers. Swallows task exceptions.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task (round-robin across worker deques). Thread-safe.
  void submit(Task task);

  /// Block until all submitted tasks completed; rethrow the first
  /// captured task exception, if any, and clear it.
  void wait();

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// WORMSIM_JOBS if set to a positive integer, else
  /// hardware_concurrency(), never less than 1.
  static unsigned default_jobs();

  /// 0 -> default_jobs(); anything else passes through.
  static unsigned resolve_jobs(unsigned requested) {
    return requested == 0 ? default_jobs() : requested;
  }

  /// Largest shard count that keeps `jobs` concurrent simulations, each
  /// running `shards` crew lanes, within `hardware` threads. `shards`
  /// follows the SimulatorConfig convention (0 = one per hardware
  /// thread); the result is always >= 1 and never larger than the
  /// (resolved) request — oversubscription clamps, it never grows.
  static unsigned clamp_shards_for_jobs(unsigned shards, unsigned jobs,
                                        unsigned hardware) noexcept {
    const unsigned hw = std::max(1u, hardware);
    const unsigned j = std::max(1u, jobs);
    const unsigned eff = shards == 0 ? hw : shards;
    if (static_cast<unsigned long long>(j) * eff <= hw) return eff;
    return std::max(1u, hw / j);
  }

 private:
  void worker_loop(std::size_t self);
  /// Pop a task for worker `self`: own deque first (front), then steal
  /// from siblings. Caller holds `mu_`. Returns false if none queued.
  bool take_task(std::size_t self, Task& out);

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<std::deque<Task>> queues_;  // one per worker, guarded by mu_
  std::size_t next_queue_ = 0;            // round-robin submission cursor
  std::size_t in_flight_ = 0;             // queued + currently running
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Run `body(0..n-1)`, distributing indices over `jobs` workers
/// (0 = default_jobs()). With one job — or one index — the body runs
/// inline on the calling thread with no pool at all, so WORMSIM_JOBS=1
/// degenerates to the exact serial code path. Rethrows the first body
/// exception.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body);

/// Persistent fork/join crew for the sharded simulation core: a fixed
/// set of `shards` lanes that all execute the same body once per
/// `run()` call, with a barrier on entry and exit.
///
/// Why not ThreadPool + submit/wait? The simulator crosses this
/// barrier up to three times per simulated cycle, so the crew keeps
/// `shards - 1` dedicated workers parked on a condition variable and
/// reuses them for every run — no allocation, no queue traffic, no
/// thread churn on the per-cycle path. The *calling* thread executes
/// shard 0, so `ShardCrew(1)` spawns no threads at all and `run()`
/// degenerates to a plain inline call.
///
/// Semantics callers rely on:
///  - `run(body)` returns only after every shard finished (join
///    barrier), so the caller may freely read anything the shards
///    wrote — the barrier publishes it.
///  - If shards throw, the exception from the LOWEST shard id is
///    rethrown (deterministic under contention); the others are
///    dropped. The crew stays usable afterwards.
///  - Re-entrant use (calling `run()` from inside a body, on any
///    ShardCrew) throws std::logic_error: shard bodies must never
///    nest fork/join regions, that way deadlock lies.
class ShardCrew {
 public:
  using Body = std::function<void(unsigned shard)>;

  /// `shards >= 1`; spawns `shards - 1` worker threads.
  explicit ShardCrew(unsigned shards);
  ~ShardCrew();

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  /// Execute `body(s)` once for every shard s in [0, shards()); shard 0
  /// runs on the calling thread. Blocks until all shards finished, then
  /// rethrows the lowest-shard exception if any shard threw.
  void run(const Body& body);

  unsigned shards() const noexcept { return shards_; }

  /// The contiguous index range shard `shard` owns when `total` items
  /// are split across `shards` lanes: sizes differ by at most one and
  /// lower shards take the remainder, so the split is deterministic.
  /// Returns {begin, end}.
  static std::pair<std::size_t, std::size_t> slice(std::size_t total,
                                                   unsigned shard,
                                                   unsigned shards) {
    const std::size_t base = total / shards;
    const std::size_t rem = total % shards;
    const std::size_t lo =
        shard * base + std::min<std::size_t>(shard, rem);
    return {lo, lo + base + (shard < rem ? 1 : 0)};
  }

 private:
  void worker_loop(unsigned shard);
  void run_shard(unsigned shard);

  mutable std::mutex mu_;
  std::condition_variable start_;  // workers wait for a new generation
  std::condition_variable done_;   // caller waits for remaining_ == 0
  const Body* body_ = nullptr;     // valid while a generation is live
  std::uint64_t generation_ = 0;   // bumped once per run()
  unsigned remaining_ = 0;         // shards still inside the body
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;  // slot per shard
  unsigned shards_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace wormsim::util
