// Work-stealing thread pool for embarrassingly parallel simulation work.
//
// The sweep harness runs one full simulation per task (milliseconds to
// seconds each), so the design optimises for correctness and clean
// semantics rather than nanosecond dispatch: per-worker deques guarded
// by one pool mutex, round-robin submission, and workers that steal
// from a sibling's queue when their own runs dry. Tasks this coarse
// never contend meaningfully on the lock.
//
// Semantics that callers rely on:
//  - `wait()` blocks until every submitted task has finished and
//    rethrows the first exception any task threw (later exceptions of
//    the same batch are dropped; the error slot is cleared so the pool
//    stays usable).
//  - The destructor drains queued tasks gracefully (runs them, then
//    joins); exceptions raised during destruction are swallowed — call
//    `wait()` if you care about them.
//  - Worker count: `default_jobs()` honours the WORMSIM_JOBS
//    environment variable (>= 1) and falls back to
//    std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wormsim::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `workers == 0` means `default_jobs()`.
  explicit ThreadPool(unsigned workers = 0);

  /// Drains queued tasks, joins all workers. Swallows task exceptions.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task (round-robin across worker deques). Thread-safe.
  void submit(Task task);

  /// Block until all submitted tasks completed; rethrow the first
  /// captured task exception, if any, and clear it.
  void wait();

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// WORMSIM_JOBS if set to a positive integer, else
  /// hardware_concurrency(), never less than 1.
  static unsigned default_jobs();

  /// 0 -> default_jobs(); anything else passes through.
  static unsigned resolve_jobs(unsigned requested) {
    return requested == 0 ? default_jobs() : requested;
  }

 private:
  void worker_loop(std::size_t self);
  /// Pop a task for worker `self`: own deque first (front), then steal
  /// from siblings. Caller holds `mu_`. Returns false if none queued.
  bool take_task(std::size_t self, Task& out);

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<std::deque<Task>> queues_;  // one per worker, guarded by mu_
  std::size_t next_queue_ = 0;            // round-robin submission cursor
  std::size_t in_flight_ = 0;             // queued + currently running
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Run `body(0..n-1)`, distributing indices over `jobs` workers
/// (0 = default_jobs()). With one job — or one index — the body runs
/// inline on the calling thread with no pool at all, so WORMSIM_JOBS=1
/// degenerates to the exact serial code path. Rethrows the first body
/// exception.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body);

}  // namespace wormsim::util
