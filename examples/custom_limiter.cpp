// Extending the library: plug a user-defined injection-limitation
// mechanism into the simulator.
//
// This example implements a simple "occupancy cap" limiter — inject only
// while fewer than `cap` of the node's output VCs are busy, a global
// (non-routing-aware) variant of the LF family — and races it against
// ALO on the same workload. It demonstrates the InjectionLimiter
// interface, manual Simulator assembly (instead of config::presets), and
// why routing-awareness matters.
#include <bit>
#include <cstdio>
#include <exception>
#include <memory>

#include "core/limiter.hpp"
#include "harness/sweep.hpp"
#include "obs/log.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace wormsim;

namespace {

/// Inject only while the total busy output-VC count at the node is below
/// a fixed cap. Unlike ALO, it ignores the routing function, so it
/// throttles on congestion the message would never meet and misses
/// congestion concentrated on the message's own path.
class OccupancyCapLimiter final : public core::InjectionLimiter {
 public:
  explicit OccupancyCapLimiter(unsigned cap) : cap_(cap) {}

  bool allow(const core::InjectionRequest& req,
             const core::ChannelStatus& status) override {
    unsigned busy = 0;
    const std::uint32_t vc_field = (1u << status.num_vcs()) - 1u;
    for (unsigned c = 0; c < status.num_phys_channels(); ++c) {
      const auto free = status.free_vc_mask(
                            req.node, static_cast<core::ChannelId>(c)) &
                        vc_field;
      busy += status.num_vcs() - static_cast<unsigned>(std::popcount(free));
    }
    return busy < cap_;
  }

  // The enum has no slot for external mechanisms; report the closest
  // family. Downstream code only uses this for labels.
  core::LimiterKind kind() const noexcept override {
    return core::LimiterKind::LF;
  }

 private:
  unsigned cap_;
};

metrics::SimResult run_with(std::unique_ptr<core::InjectionLimiter> limiter,
                            const config::SimConfig& cfg) {
  const topo::KAryNCube topo(cfg.k, cfg.n);
  auto workload =
      std::make_unique<traffic::Workload>(topo, cfg.workload, cfg.seed);
  sim::Simulator simulator(topo, cfg.sim, std::move(workload));
  simulator.set_limiter(std::move(limiter));  // the extension seam
  return simulator.run(cfg.protocol);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig cfg = config::small_base();
    harness::apply_common_flags(cfg, args);
    harness::apply_scale_env(cfg);
    const double offered = args.get_double("offered", 1.0);
    cfg.workload.offered_flits_per_node_cycle = offered;

    std::printf("%s\n", harness::describe(cfg).c_str());
    std::printf("%-14s %10s %10s %9s %9s\n", "mechanism", "accepted",
                "latency", "dl%", "queue");

    // Baselines through the standard factory.
    for (const auto kind : {core::LimiterKind::None, core::LimiterKind::ALO}) {
      cfg.sim.limiter.kind = kind;
      const auto r = config::run_experiment(cfg);
      std::printf("%-14s %10.3f %10.1f %8.2f%% %9.1f\n",
                  std::string(core::limiter_name(kind)).c_str(),
                  r.accepted_flits_per_node_cycle, r.latency_mean,
                  r.deadlock_pct, r.avg_queue_len);
    }

    // The custom mechanism at a few cap values scaled to the node's
    // total output-VC count.
    const unsigned total_vcs = 2 * cfg.n * cfg.sim.net.num_vcs;
    for (const unsigned cap :
         {total_vcs / 3, total_vcs / 2, (3 * total_vcs) / 4}) {
      cfg.sim.limiter.kind = core::LimiterKind::None;
      const auto r =
          run_with(std::make_unique<OccupancyCapLimiter>(cap), cfg);
      std::printf("occupancy<%-3u %10.3f %10.1f %8.2f%% %9.1f\n", cap,
                  r.accepted_flits_per_node_cycle, r.latency_mean,
                  r.deadlock_pct, r.avg_queue_len);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
