// Quickstart: simulate the paper's 8-ary 3-cube at one offered load with
// and without the ALO injection limitation mechanism, and print the
// headline metrics.
//
//   ./quickstart [--k 8 --n 3 --offered 0.4 --pattern uniform
//                 --msg-len 16 --limiter alo --core dense|active ...]
//
// With no arguments it runs a small 64-node network so it finishes in a
// few seconds.
#include <cstdio>
#include <exception>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "obs/log.hpp"
#include "util/cli.hpp"

using namespace wormsim;

namespace {

void print_result(const char* label, const metrics::SimResult& r) {
  std::printf(
      "%-6s offered=%.3f accepted=%.3f flits/node/cycle  latency=%.1f "
      "(sd %.1f, p99 %.0f) cycles  deadlocks=%.2f%%  drained=%s\n",
      label, r.offered_flits_per_node_cycle, r.accepted_flits_per_node_cycle,
      r.latency_mean, r.latency_stddev, r.latency_p99, r.deadlock_pct,
      r.fully_drained ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig cfg = config::small_base();
    harness::apply_common_flags(cfg, args);
    cfg.workload.offered_flits_per_node_cycle =
        args.get_double("offered", 0.35);

    std::printf("%s\n", harness::describe(cfg).c_str());

    for (const auto kind : {core::LimiterKind::None, core::LimiterKind::ALO}) {
      cfg.sim.limiter.kind = kind;
      const auto result = config::run_experiment(cfg);
      print_result(std::string(core::limiter_name(kind)).c_str(), result);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
