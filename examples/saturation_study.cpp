// Saturation study: sweep offered load for a chosen traffic pattern and
// print the latency / accepted-traffic / deadlock curves for all four
// mechanisms (None, ALO, LF, DRIL) as CSV — the shape of the paper's
// Figures 5..10 in one command.
//
//   ./saturation_study --pattern complement --msg-len 16
//       --loads 8 --max-load 1.2 [--k 8 --n 3 --jobs 4 ...]
//
// Defaults use the 64-node reduced preset; pass --paper for the full
// 8-ary 3-cube of the paper (slower). Points run in parallel (--jobs,
// or the WORMSIM_JOBS env; output is identical for any job count).
#include <cstdio>
#include <exception>
#include <iostream>

#include "harness/sweep.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig base = args.has("paper") ? config::paper_base()
                                               : config::small_base();
    harness::apply_common_flags(base, args);
    harness::apply_scale_env(base);

    const auto points = static_cast<unsigned>(args.get_uint("loads", 8));
    const double min_load = args.get_double("min-load", 0.1);
    const double max_load = args.get_double("max-load", 1.2);

    harness::SweepSpec spec;
    spec.base = base;
    spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                     core::LimiterKind::LF, core::LimiterKind::DRIL};
    spec.offered_loads = harness::load_range(min_load, max_load, points);
    spec.jobs = harness::jobs_flag(args);
    metrics::SweepStats stats;
    spec.stats = &stats;
    spec.on_point = [](const harness::SweepPoint& p) {
      std::fprintf(stderr, "  [%s @ %.3f] accepted=%.3f latency=%.1f%s\n",
                   std::string(core::limiter_name(p.limiter)).c_str(),
                   p.offered, p.result.accepted_flits_per_node_cycle,
                   p.result.latency_mean,
                   p.result.saturated ? " (saturated)" : "");
    };

    std::cout << harness::describe(base) << "\n";
    const auto results = harness::run_sweep(spec);
    harness::write_sweep_csv(std::cout, results);
    std::fprintf(stderr, "# %s\n", stats.summary().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
