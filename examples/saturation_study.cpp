// Saturation study: sweep offered load for a chosen traffic pattern and
// print the latency / accepted-traffic / deadlock curves for all four
// mechanisms (None, ALO, LF, DRIL) as CSV — the shape of the paper's
// Figures 5..10 in one command.
//
//   ./saturation_study --pattern complement --msg-len 16
//       --loads 8 --max-load 1.2 [--k 8 --n 3 --jobs 4 ...]
//
// Defaults use the 64-node reduced preset; pass --paper for the full
// 8-ary 3-cube of the paper (slower). Points run in parallel (--jobs,
// or the WORMSIM_JOBS env; output is identical for any job count).
// Observability: --metrics-out FILE (JSONL telemetry), --trace FILE
// (Perfetto-loadable Chrome trace), --spatial-out PREFIX (per-channel /
// per-node heatmap CSVs), --log-level LEVEL.
#include <exception>
#include <iostream>

#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "obs/log.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig base = args.has("paper") ? config::paper_base()
                                               : config::small_base();
    harness::apply_common_flags(base, args);
    harness::apply_scale_env(base);

    const auto points = static_cast<unsigned>(args.get_uint("loads", 8));
    const double min_load = args.get_double("min-load", 0.1);
    const double max_load = args.get_double("max-load", 1.2);

    harness::SweepSpec spec;
    spec.base = base;
    spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                     core::LimiterKind::LF, core::LimiterKind::DRIL};
    spec.offered_loads = harness::load_range(min_load, max_load, points);
    spec.jobs = harness::jobs_flag(args);
    metrics::SweepStats stats;
    spec.stats = &stats;
    spec.progress = true;
    harness::ObsSession session(args);
    session.attach(spec);

    std::cout << harness::describe(base) << "\n";
    const auto results = harness::run_sweep(spec);
    harness::write_sweep_csv(std::cout, results);
    obs::logf(obs::LogLevel::Info, "# %s\n", stats.summary().c_str());
    session.finish(spec, results, &stats);
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
