// Transient dynamics under bursty traffic, seen through the per-interval
// time series: how a burst drives the network into saturation and how
// the ALO mechanism changes what happens next.
//
//   ./burst_dynamics [--offered 0.45 --duty 0.3 --burst-len 800
//                     --interval 256 --cycles 20000]
//
// Prints one CSV row per interval and mechanism: accepted traffic,
// mean latency of deliveries, deadlock detections and total queued
// messages. Feed it to any plotting tool to watch the collapse (None)
// versus the queue-absorbed burst (ALO).
#include <cstdio>
#include <exception>
#include <iostream>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "obs/log.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig cfg = config::small_base();
    harness::apply_common_flags(cfg, args);
    harness::apply_scale_env(cfg);
    cfg.workload.process = traffic::ProcessKind::Bursty;
    cfg.workload.offered_flits_per_node_cycle =
        args.get_double("offered", 0.45);
    cfg.workload.bursty.duty_cycle = args.get_double("duty", 0.3);
    cfg.workload.bursty.mean_burst_cycles =
        args.get_double("burst-len", 800.0);
    const auto interval = args.get_uint("interval", 256);
    const auto cycles = args.get_uint("cycles", 20000);

    std::printf("%s\n", harness::describe(cfg).c_str());
    std::printf(
        "# bursty process: duty %.2f, mean burst %.0f cycles, burst rate "
        "%.2f flits/node/cycle\n",
        cfg.workload.bursty.duty_cycle, cfg.workload.bursty.mean_burst_cycles,
        cfg.workload.offered_flits_per_node_cycle /
            cfg.workload.bursty.duty_cycle);

    util::CsvWriter csv(std::cout);
    csv.header({"mechanism", "interval_start", "accepted_flits_node_cycle",
                "latency_avg_cycles", "deadlocks", "queued_msgs"});
    for (const auto kind : {core::LimiterKind::None, core::LimiterKind::ALO}) {
      cfg.sim.limiter.kind = kind;
      auto sim = config::build_simulator(cfg);
      sim->enable_timeseries(interval);
      sim->step_cycles(cycles);
      const auto nodes = sim->topology().num_nodes();
      const auto* ts = sim->timeseries();
      for (std::size_t i = 0; i < ts->intervals().size(); ++i) {
        const auto& iv = ts->intervals()[i];
        csv.row(core::limiter_name(kind), iv.start_cycle,
                ts->accepted(i, nodes), iv.latency.mean(),
                iv.deadlock_detections, iv.queue_total);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
