// Pattern explorer: characterize each traffic pattern on a topology —
// active-node fraction, mean minimal distance of its flows, channel-load
// concentration — then simulate one load point per pattern and report
// the sustained throughput with and without ALO.
//
//   ./pattern_explorer [--k 8 --n 3 --offered 0.8 --msg-len 16 --jobs 4]
#include <cstdio>
#include <exception>
#include <vector>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "obs/log.hpp"
#include "traffic/patterns.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace wormsim;

namespace {

/// Mean minimal distance over every node's pattern flow (random
/// patterns sample; deterministic ones enumerate).
double mean_flow_distance(const traffic::TrafficPattern& p,
                          const topo::KAryNCube& t, util::Rng& rng) {
  double sum = 0;
  unsigned flows = 0;
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n) {
    const topo::NodeId d = p.destination(n, rng);
    if (d == n) continue;
    sum += t.distance(n, d);
    ++flows;
  }
  return flows ? sum / flows : 0.0;
}

/// Peak / mean load ratio over physical channels assuming each active
/// node routes one minimal flow, split evenly over its useful channels
/// hop by hop (a quick static congestion estimate for deterministic
/// patterns).
double channel_concentration(const traffic::TrafficPattern& p,
                             const topo::KAryNCube& t, util::Rng& rng) {
  std::vector<double> load(t.num_nodes() * t.num_channels(), 0.0);
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n) {
    topo::NodeId here = n;
    const topo::NodeId dst = p.destination(n, rng);
    if (dst == n) continue;
    while (here != dst) {
      const std::uint32_t mask = t.useful_channels_mask(here, dst);
      // Follow the lowest useful channel; credit its link.
      const auto c = static_cast<topo::ChannelId>(
          static_cast<unsigned>(__builtin_ctz(mask)));
      load[here * t.num_channels() + c] += 1.0;
      here = t.neighbor(here, c);
    }
  }
  double sum = 0, peak = 0;
  unsigned used = 0;
  for (double l : load) {
    sum += l;
    peak = std::max(peak, l);
    used += (l > 0);
  }
  return used ? peak / (sum / used) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig base = config::small_base();
    harness::apply_common_flags(base, args);
    harness::apply_scale_env(base);
    const double offered = args.get_double("offered", 0.8);

    const topo::KAryNCube topo(base.k, base.n);
    util::Rng rng(base.seed);

    std::printf("%s\n", harness::describe(base).c_str());
    std::printf("%-16s %8s %10s %8s | %10s %10s %9s\n", "pattern", "active",
                "mean_dist", "conc", "none_acc", "alo_acc", "alo_dl%");

    const std::vector<traffic::PatternKind> kinds = {
        traffic::PatternKind::Uniform, traffic::PatternKind::Butterfly,
        traffic::PatternKind::Complement, traffic::PatternKind::BitReversal,
        traffic::PatternKind::PerfectShuffle, traffic::PatternKind::Transpose,
        traffic::PatternKind::Tornado};

    // The two simulations per pattern are independent; run the whole
    // pattern × {None, ALO} grid on the thread pool (seeds unchanged:
    // both limiters see the identical workload at base.seed).
    std::vector<metrics::SimResult> sims(kinds.size() * 2);
    util::parallel_for(
        sims.size(), harness::jobs_flag(args), [&](std::size_t i) {
          config::SimConfig cfg = base;
          cfg.workload.pattern = kinds[i / 2];
          cfg.workload.offered_flits_per_node_cycle = offered;
          cfg.sim.limiter.kind =
              (i % 2) ? core::LimiterKind::ALO : core::LimiterKind::None;
          sims[i] = config::run_experiment(cfg);
        });

    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const auto kind = kinds[i];
      auto pattern = traffic::make_pattern(kind, topo);
      const double active = traffic::active_node_fraction(*pattern, topo, rng);
      const double dist = mean_flow_distance(*pattern, topo, rng);
      const double conc = channel_concentration(*pattern, topo, rng);
      const auto& none = sims[i * 2];
      const auto& alo = sims[i * 2 + 1];
      std::printf("%-16s %7.0f%% %10.2f %8.2f | %10.3f %10.3f %8.2f%%\n",
                  std::string(traffic::pattern_name(kind)).c_str(),
                  active * 100.0, dist, conc,
                  none.accepted_flits_per_node_cycle,
                  alo.accepted_flits_per_node_cycle, alo.deadlock_pct);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
