#!/bin/sh
# Regenerates bench_output.txt: every figure/ablation/micro bench at
# full paper scale (8-ary 3-cube). Takes on the order of an hour on one
# core. Sweep benches also drop JSONL telemetry (one record per sweep
# point plus a summary) and a wormsim.timeseries/1 windowed-series
# stream into bench_telemetry/ so throughput, saturation-onset and
# skip-ratio diagnostics can be compared across machines and commits.
set -u
cd "$(dirname "$0")"
mkdir -p bench_telemetry
status=0
# The gate checker validates itself before it is trusted with any
# real bench JSON.
python3 tools/check_bench.py --self-test || status=1
# TSan preflight over the shard-labelled tests: the sharded
# evaluate/commit core must be provably race-free before its scaling
# numbers mean anything. Builds a separate instrumented tree (slow the
# first time, incremental after); WORMSIM_SKIP_TSAN_PREFLIGHT=1 skips,
# e.g. on hosts without TSan runtime support.
if [ "${WORMSIM_SKIP_TSAN_PREFLIGHT:-0}" != "1" ]; then
  echo "===== tsan preflight (ctest -L shard; WORMSIM_SKIP_TSAN_PREFLIGHT=1 to skip)"
  cmake -B build-tsan -S . -DWORMSIM_TSAN=ON >/dev/null \
    && cmake --build build-tsan -j >/dev/null \
    && (cd build-tsan && ctest -L shard --output-on-failure) \
    || status=1
fi
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "===== $b"
  case "$name" in
    fig01*|fig05*|fig06*|fig07*|fig08*|fig09*|fig10*|ablation_avoidance)
      # Standard sweep benches: collect per-point JSONL telemetry plus
      # the windowed time series (histograms + saturation detector on).
      "$b" --metrics-out "bench_telemetry/$name.jsonl" \
           --timeseries-out "bench_telemetry/$name.timeseries.jsonl"
      ;;
    fault_transient)
      # Degraded-operation demo (telemetry + spatial CSVs of the faulty
      # network), then the gated recovery-transient JSON, re-validated
      # the same way as the micro_mechanism gates.
      "$b" --metrics-out "bench_telemetry/$name.jsonl" \
           --timeseries-out "bench_telemetry/$name.timeseries.jsonl" \
           --spatial-out "bench_telemetry/$name" \
           --spatial-load 1.0 --spatial-limiter alo
      "$b" --json bench_telemetry/fault_transient.json || status=1
      python3 tools/check_bench.py bench_telemetry/fault_transient.json \
        || status=1
      ;;
    shard_scaling)
      # Sharded-core scaling: human-readable shard sweep, then the
      # gated JSON (single-shard overhead always; multi-shard speedup
      # on multi-core hosts) plus the 32k-node scale demo.
      "$b"
      "$b" --json bench_telemetry/BENCH_shard.json || status=1
      python3 tools/check_bench.py bench_telemetry/BENCH_shard.json \
        || status=1
      ;;
    micro_mechanism)
      # Google-benchmark suite, then the gated JSON modes. Each JSON is
      # re-validated against its embedded criteria block so a perf
      # regression fails the whole run, not just one loop iteration.
      # obs_overhead carries the online-statistics overhead gates
      # (off A/A <= 2%, histograms+timeseries on <= 5%).
      "$b"
      "$b" --hotpath-json bench_telemetry/hotpath.json || status=1
      "$b" --obs-overhead-json bench_telemetry/obs_overhead.json || status=1
      python3 tools/check_bench.py bench_telemetry/hotpath.json \
        bench_telemetry/obs_overhead.json || status=1
      ;;
    *)
      # Custom-loop and google-benchmark binaries: no sweep telemetry.
      "$b"
      ;;
  esac
done
exit "$status"
