#!/bin/sh
# Regenerates bench_output.txt: every figure/ablation/micro bench at
# full paper scale (8-ary 3-cube). Takes on the order of an hour on one
# core.
set -u
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && echo "===== $b" && "$b"
done
