foreach(t IN LISTS test_thread_pool_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;parallel")
endforeach()
