foreach(t IN LISTS test_parallel_sweep_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;parallel")
endforeach()
