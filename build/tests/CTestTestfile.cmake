# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_util_labels.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool_labels.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_topology_labels.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_labels.cmake")
include("/root/repo/build/tests/test_deadlock[1]_include.cmake")
include("/root/repo/build/tests/test_deadlock_labels.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_routing_labels.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_core_labels.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_labels.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_labels.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_integration_labels.cmake")
include("/root/repo/build/tests/test_parallel_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_sweep_labels.cmake")
