# Empty dependencies file for test_parallel_sweep.
# This may be replaced when dependencies are built.
