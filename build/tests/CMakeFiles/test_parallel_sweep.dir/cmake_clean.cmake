file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_sweep.dir/integration/test_parallel_sweep.cpp.o"
  "CMakeFiles/test_parallel_sweep.dir/integration/test_parallel_sweep.cpp.o.d"
  "test_parallel_sweep"
  "test_parallel_sweep.pdb"
  "test_parallel_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
