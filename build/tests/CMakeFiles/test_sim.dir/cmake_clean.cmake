file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_deadlock_recovery.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_deadlock_recovery.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_edge_behaviors.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_edge_behaviors.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_message_pool.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_message_pool.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_probe_and_escape.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_probe_and_escape.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_single_message.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_single_message.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_utilization.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_utilization.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_wormhole.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_wormhole.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
