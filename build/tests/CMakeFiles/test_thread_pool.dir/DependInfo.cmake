
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/test_thread_pool.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/wormsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/wormsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wormsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wormsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deadlock/CMakeFiles/wormsim_deadlock.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wormsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wormsim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wormsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wormsim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wormsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
