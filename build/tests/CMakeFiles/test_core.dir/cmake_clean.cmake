file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_alo.cpp.o"
  "CMakeFiles/test_core.dir/core/test_alo.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_alo_gates.cpp.o"
  "CMakeFiles/test_core.dir/core/test_alo_gates.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dril.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dril.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_linear_function.cpp.o"
  "CMakeFiles/test_core.dir/core/test_linear_function.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
