file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_golden.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_golden.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_mechanisms.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_mechanisms.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_presets.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_presets.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_replay.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_replay.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_saturation.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_saturation.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
