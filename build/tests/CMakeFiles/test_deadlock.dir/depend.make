# Empty dependencies file for test_deadlock.
# This may be replaced when dependencies are built.
