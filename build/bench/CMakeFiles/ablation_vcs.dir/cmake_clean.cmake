file(REMOVE_RECURSE
  "CMakeFiles/ablation_vcs.dir/ablation_vcs.cpp.o"
  "CMakeFiles/ablation_vcs.dir/ablation_vcs.cpp.o.d"
  "ablation_vcs"
  "ablation_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
