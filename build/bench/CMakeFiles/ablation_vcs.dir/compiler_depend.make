# Empty compiler generated dependencies file for ablation_vcs.
# This may be replaced when dependencies are built.
