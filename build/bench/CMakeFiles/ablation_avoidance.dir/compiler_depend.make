# Empty compiler generated dependencies file for ablation_avoidance.
# This may be replaced when dependencies are built.
