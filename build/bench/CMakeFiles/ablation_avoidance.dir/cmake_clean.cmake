file(REMOVE_RECURSE
  "CMakeFiles/ablation_avoidance.dir/ablation_avoidance.cpp.o"
  "CMakeFiles/ablation_avoidance.dir/ablation_avoidance.cpp.o.d"
  "ablation_avoidance"
  "ablation_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
