file(REMOVE_RECURSE
  "CMakeFiles/fig01_degradation.dir/fig01_degradation.cpp.o"
  "CMakeFiles/fig01_degradation.dir/fig01_degradation.cpp.o.d"
  "fig01_degradation"
  "fig01_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
