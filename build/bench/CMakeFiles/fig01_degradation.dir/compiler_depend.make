# Empty compiler generated dependencies file for fig01_degradation.
# This may be replaced when dependencies are built.
