file(REMOVE_RECURSE
  "CMakeFiles/micro_mechanism.dir/micro_mechanism.cpp.o"
  "CMakeFiles/micro_mechanism.dir/micro_mechanism.cpp.o.d"
  "micro_mechanism"
  "micro_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
