# Empty compiler generated dependencies file for micro_mechanism.
# This may be replaced when dependencies are built.
