# Empty dependencies file for fig02_routing_occurrences.
# This may be replaced when dependencies are built.
