file(REMOVE_RECURSE
  "CMakeFiles/fig02_routing_occurrences.dir/fig02_routing_occurrences.cpp.o"
  "CMakeFiles/fig02_routing_occurrences.dir/fig02_routing_occurrences.cpp.o.d"
  "fig02_routing_occurrences"
  "fig02_routing_occurrences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_routing_occurrences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
