# Empty compiler generated dependencies file for fig06_uniform64.
# This may be replaced when dependencies are built.
