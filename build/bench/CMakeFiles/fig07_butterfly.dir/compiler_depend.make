# Empty compiler generated dependencies file for fig07_butterfly.
# This may be replaced when dependencies are built.
