file(REMOVE_RECURSE
  "CMakeFiles/fig07_butterfly.dir/fig07_butterfly.cpp.o"
  "CMakeFiles/fig07_butterfly.dir/fig07_butterfly.cpp.o.d"
  "fig07_butterfly"
  "fig07_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
