# Empty dependencies file for fig08_complement.
# This may be replaced when dependencies are built.
