file(REMOVE_RECURSE
  "CMakeFiles/fig08_complement.dir/fig08_complement.cpp.o"
  "CMakeFiles/fig08_complement.dir/fig08_complement.cpp.o.d"
  "fig08_complement"
  "fig08_complement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
