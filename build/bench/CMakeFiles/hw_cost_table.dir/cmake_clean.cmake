file(REMOVE_RECURSE
  "CMakeFiles/hw_cost_table.dir/hw_cost_table.cpp.o"
  "CMakeFiles/hw_cost_table.dir/hw_cost_table.cpp.o.d"
  "hw_cost_table"
  "hw_cost_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cost_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
