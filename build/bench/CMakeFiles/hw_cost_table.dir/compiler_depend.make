# Empty compiler generated dependencies file for hw_cost_table.
# This may be replaced when dependencies are built.
