# Empty compiler generated dependencies file for ablation_bursty.
# This may be replaced when dependencies are built.
