file(REMOVE_RECURSE
  "CMakeFiles/ablation_bursty.dir/ablation_bursty.cpp.o"
  "CMakeFiles/ablation_bursty.dir/ablation_bursty.cpp.o.d"
  "ablation_bursty"
  "ablation_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
