# Empty compiler generated dependencies file for fig10_perfectshuffle.
# This may be replaced when dependencies are built.
