file(REMOVE_RECURSE
  "CMakeFiles/fig10_perfectshuffle.dir/fig10_perfectshuffle.cpp.o"
  "CMakeFiles/fig10_perfectshuffle.dir/fig10_perfectshuffle.cpp.o.d"
  "fig10_perfectshuffle"
  "fig10_perfectshuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_perfectshuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
