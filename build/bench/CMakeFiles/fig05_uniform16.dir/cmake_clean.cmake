file(REMOVE_RECURSE
  "CMakeFiles/fig05_uniform16.dir/fig05_uniform16.cpp.o"
  "CMakeFiles/fig05_uniform16.dir/fig05_uniform16.cpp.o.d"
  "fig05_uniform16"
  "fig05_uniform16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_uniform16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
