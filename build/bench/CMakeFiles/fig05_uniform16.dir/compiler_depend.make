# Empty compiler generated dependencies file for fig05_uniform16.
# This may be replaced when dependencies are built.
