# Empty compiler generated dependencies file for fig09_bitreversal.
# This may be replaced when dependencies are built.
