file(REMOVE_RECURSE
  "CMakeFiles/fig09_bitreversal.dir/fig09_bitreversal.cpp.o"
  "CMakeFiles/fig09_bitreversal.dir/fig09_bitreversal.cpp.o.d"
  "fig09_bitreversal"
  "fig09_bitreversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bitreversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
