# Empty dependencies file for fig04_fairness.
# This may be replaced when dependencies are built.
