file(REMOVE_RECURSE
  "CMakeFiles/fig04_fairness.dir/fig04_fairness.cpp.o"
  "CMakeFiles/fig04_fairness.dir/fig04_fairness.cpp.o.d"
  "fig04_fairness"
  "fig04_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
