# Empty dependencies file for wormsim_core.
# This may be replaced when dependencies are built.
