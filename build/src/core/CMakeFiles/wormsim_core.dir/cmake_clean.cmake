file(REMOVE_RECURSE
  "CMakeFiles/wormsim_core.dir/alo.cpp.o"
  "CMakeFiles/wormsim_core.dir/alo.cpp.o.d"
  "CMakeFiles/wormsim_core.dir/alo_gates.cpp.o"
  "CMakeFiles/wormsim_core.dir/alo_gates.cpp.o.d"
  "CMakeFiles/wormsim_core.dir/cost_model.cpp.o"
  "CMakeFiles/wormsim_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/wormsim_core.dir/dril.cpp.o"
  "CMakeFiles/wormsim_core.dir/dril.cpp.o.d"
  "CMakeFiles/wormsim_core.dir/limiter.cpp.o"
  "CMakeFiles/wormsim_core.dir/limiter.cpp.o.d"
  "CMakeFiles/wormsim_core.dir/linear_function.cpp.o"
  "CMakeFiles/wormsim_core.dir/linear_function.cpp.o.d"
  "libwormsim_core.a"
  "libwormsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
