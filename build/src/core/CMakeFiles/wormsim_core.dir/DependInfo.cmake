
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alo.cpp" "src/core/CMakeFiles/wormsim_core.dir/alo.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/alo.cpp.o.d"
  "/root/repo/src/core/alo_gates.cpp" "src/core/CMakeFiles/wormsim_core.dir/alo_gates.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/alo_gates.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/wormsim_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/dril.cpp" "src/core/CMakeFiles/wormsim_core.dir/dril.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/dril.cpp.o.d"
  "/root/repo/src/core/limiter.cpp" "src/core/CMakeFiles/wormsim_core.dir/limiter.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/limiter.cpp.o.d"
  "/root/repo/src/core/linear_function.cpp" "src/core/CMakeFiles/wormsim_core.dir/linear_function.cpp.o" "gcc" "src/core/CMakeFiles/wormsim_core.dir/linear_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wormsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wormsim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wormsim_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
