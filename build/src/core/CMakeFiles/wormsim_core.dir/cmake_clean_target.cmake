file(REMOVE_RECURSE
  "libwormsim_core.a"
)
