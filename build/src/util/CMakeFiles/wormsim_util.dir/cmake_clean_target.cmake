file(REMOVE_RECURSE
  "libwormsim_util.a"
)
