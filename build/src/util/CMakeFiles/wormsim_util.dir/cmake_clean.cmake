file(REMOVE_RECURSE
  "CMakeFiles/wormsim_util.dir/cli.cpp.o"
  "CMakeFiles/wormsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/wormsim_util.dir/csv.cpp.o"
  "CMakeFiles/wormsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/wormsim_util.dir/rng.cpp.o"
  "CMakeFiles/wormsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/wormsim_util.dir/stats.cpp.o"
  "CMakeFiles/wormsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/wormsim_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wormsim_util.dir/thread_pool.cpp.o.d"
  "libwormsim_util.a"
  "libwormsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
