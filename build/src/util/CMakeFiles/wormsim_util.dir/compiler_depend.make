# Empty compiler generated dependencies file for wormsim_util.
# This may be replaced when dependencies are built.
