# Empty compiler generated dependencies file for wormsim_config.
# This may be replaced when dependencies are built.
