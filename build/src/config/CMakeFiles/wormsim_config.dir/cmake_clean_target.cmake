file(REMOVE_RECURSE
  "libwormsim_config.a"
)
