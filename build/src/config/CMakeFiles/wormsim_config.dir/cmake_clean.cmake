file(REMOVE_RECURSE
  "CMakeFiles/wormsim_config.dir/presets.cpp.o"
  "CMakeFiles/wormsim_config.dir/presets.cpp.o.d"
  "libwormsim_config.a"
  "libwormsim_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
