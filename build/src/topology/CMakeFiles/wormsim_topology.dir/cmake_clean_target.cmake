file(REMOVE_RECURSE
  "libwormsim_topology.a"
)
