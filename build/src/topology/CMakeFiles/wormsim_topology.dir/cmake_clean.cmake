file(REMOVE_RECURSE
  "CMakeFiles/wormsim_topology.dir/kary_ncube.cpp.o"
  "CMakeFiles/wormsim_topology.dir/kary_ncube.cpp.o.d"
  "libwormsim_topology.a"
  "libwormsim_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
