# Empty compiler generated dependencies file for wormsim_topology.
# This may be replaced when dependencies are built.
