file(REMOVE_RECURSE
  "libwormsim_routing.a"
)
