# Empty compiler generated dependencies file for wormsim_routing.
# This may be replaced when dependencies are built.
