file(REMOVE_RECURSE
  "CMakeFiles/wormsim_routing.dir/routing.cpp.o"
  "CMakeFiles/wormsim_routing.dir/routing.cpp.o.d"
  "CMakeFiles/wormsim_routing.dir/selection.cpp.o"
  "CMakeFiles/wormsim_routing.dir/selection.cpp.o.d"
  "libwormsim_routing.a"
  "libwormsim_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
