file(REMOVE_RECURSE
  "libwormsim_metrics.a"
)
