file(REMOVE_RECURSE
  "CMakeFiles/wormsim_metrics.dir/collector.cpp.o"
  "CMakeFiles/wormsim_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/wormsim_metrics.dir/sweep_stats.cpp.o"
  "CMakeFiles/wormsim_metrics.dir/sweep_stats.cpp.o.d"
  "libwormsim_metrics.a"
  "libwormsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
