# Empty compiler generated dependencies file for wormsim_metrics.
# This may be replaced when dependencies are built.
