file(REMOVE_RECURSE
  "libwormsim_sim.a"
)
