
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/wormsim_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/wormsim_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/wormsim_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/wormsim_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/utilization.cpp" "src/sim/CMakeFiles/wormsim_sim.dir/utilization.cpp.o" "gcc" "src/sim/CMakeFiles/wormsim_sim.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wormsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wormsim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wormsim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wormsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wormsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deadlock/CMakeFiles/wormsim_deadlock.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wormsim_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
