# Empty compiler generated dependencies file for wormsim_sim.
# This may be replaced when dependencies are built.
