file(REMOVE_RECURSE
  "CMakeFiles/wormsim_sim.dir/network.cpp.o"
  "CMakeFiles/wormsim_sim.dir/network.cpp.o.d"
  "CMakeFiles/wormsim_sim.dir/simulator.cpp.o"
  "CMakeFiles/wormsim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wormsim_sim.dir/utilization.cpp.o"
  "CMakeFiles/wormsim_sim.dir/utilization.cpp.o.d"
  "libwormsim_sim.a"
  "libwormsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
