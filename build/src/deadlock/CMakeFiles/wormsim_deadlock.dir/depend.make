# Empty dependencies file for wormsim_deadlock.
# This may be replaced when dependencies are built.
