file(REMOVE_RECURSE
  "libwormsim_deadlock.a"
)
