file(REMOVE_RECURSE
  "CMakeFiles/wormsim_deadlock.dir/recovery.cpp.o"
  "CMakeFiles/wormsim_deadlock.dir/recovery.cpp.o.d"
  "libwormsim_deadlock.a"
  "libwormsim_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
