file(REMOVE_RECURSE
  "libwormsim_traffic.a"
)
