# Empty dependencies file for wormsim_traffic.
# This may be replaced when dependencies are built.
