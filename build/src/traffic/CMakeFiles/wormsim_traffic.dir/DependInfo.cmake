
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/injection_process.cpp" "src/traffic/CMakeFiles/wormsim_traffic.dir/injection_process.cpp.o" "gcc" "src/traffic/CMakeFiles/wormsim_traffic.dir/injection_process.cpp.o.d"
  "/root/repo/src/traffic/patterns.cpp" "src/traffic/CMakeFiles/wormsim_traffic.dir/patterns.cpp.o" "gcc" "src/traffic/CMakeFiles/wormsim_traffic.dir/patterns.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/wormsim_traffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/wormsim_traffic.dir/trace.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/traffic/CMakeFiles/wormsim_traffic.dir/workload.cpp.o" "gcc" "src/traffic/CMakeFiles/wormsim_traffic.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wormsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wormsim_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
