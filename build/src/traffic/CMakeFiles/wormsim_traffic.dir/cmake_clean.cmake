file(REMOVE_RECURSE
  "CMakeFiles/wormsim_traffic.dir/injection_process.cpp.o"
  "CMakeFiles/wormsim_traffic.dir/injection_process.cpp.o.d"
  "CMakeFiles/wormsim_traffic.dir/patterns.cpp.o"
  "CMakeFiles/wormsim_traffic.dir/patterns.cpp.o.d"
  "CMakeFiles/wormsim_traffic.dir/trace.cpp.o"
  "CMakeFiles/wormsim_traffic.dir/trace.cpp.o.d"
  "CMakeFiles/wormsim_traffic.dir/workload.cpp.o"
  "CMakeFiles/wormsim_traffic.dir/workload.cpp.o.d"
  "libwormsim_traffic.a"
  "libwormsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
