# Empty dependencies file for wormsim_harness.
# This may be replaced when dependencies are built.
