file(REMOVE_RECURSE
  "libwormsim_harness.a"
)
