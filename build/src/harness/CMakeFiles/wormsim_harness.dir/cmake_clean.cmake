file(REMOVE_RECURSE
  "CMakeFiles/wormsim_harness.dir/replay.cpp.o"
  "CMakeFiles/wormsim_harness.dir/replay.cpp.o.d"
  "CMakeFiles/wormsim_harness.dir/sweep.cpp.o"
  "CMakeFiles/wormsim_harness.dir/sweep.cpp.o.d"
  "libwormsim_harness.a"
  "libwormsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
