# Empty compiler generated dependencies file for burst_dynamics.
# This may be replaced when dependencies are built.
