file(REMOVE_RECURSE
  "CMakeFiles/burst_dynamics.dir/burst_dynamics.cpp.o"
  "CMakeFiles/burst_dynamics.dir/burst_dynamics.cpp.o.d"
  "burst_dynamics"
  "burst_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
