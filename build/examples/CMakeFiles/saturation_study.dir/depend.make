# Empty dependencies file for saturation_study.
# This may be replaced when dependencies are built.
