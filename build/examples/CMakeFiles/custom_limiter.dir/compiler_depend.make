# Empty compiler generated dependencies file for custom_limiter.
# This may be replaced when dependencies are built.
