file(REMOVE_RECURSE
  "CMakeFiles/custom_limiter.dir/custom_limiter.cpp.o"
  "CMakeFiles/custom_limiter.dir/custom_limiter.cpp.o.d"
  "custom_limiter"
  "custom_limiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
